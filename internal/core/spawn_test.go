package core

import (
	"testing"

	"lazydet/internal/dvm"
)

// forkJoinProgs builds the classic pthreads shape: thread 0 (main) spawns
// workers, they compute into disjoint cells, main joins them and sums.
func forkJoinProgs(workers int) []*dvm.Program {
	progs := make([]*dvm.Program, workers+1)
	main := dvm.NewBuilder("main")
	i, v, sum := main.Reg(), main.Reg(), main.Reg()
	main.Store(dvm.Const(0), dvm.Const(7)) // input the workers read
	main.ForN(i, int64(workers), func() {
		main.Spawn(dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) + 1 }))
	})
	main.ForN(i, int64(workers), func() {
		main.Join(dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) + 1 }))
		main.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return 8 + t.R(i) }))
		main.Do(func(t *dvm.Thread) { t.AddR(sum, t.R(v)) })
	})
	main.Store(dvm.Const(1), dvm.FromReg(sum))
	progs[0] = main.Build()

	for w := 1; w <= workers; w++ {
		b := dvm.NewBuilder("worker")
		x := b.Reg()
		b.Load(x, dvm.Const(0)) // must see main's pre-spawn write
		b.Store(dvm.Const(8+int64(w-1)), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(x) * int64(t.ID) }))
		p := b.Build()
		p.StartSuspended = true
		progs[w] = p
	}
	return progs
}

// TestForkJoin: spawn has release semantics (workers see the pre-spawn
// write), join has acquire semantics (main sees every worker's result).
func TestForkJoin(t *testing.T) {
	for _, cfg := range []Config{{Mode: ModeStrong}, lazyCfg(), {Mode: ModeWeak}} {
		name := cfg.Mode.String()
		if cfg.Speculation {
			name = "lazydet"
		}
		t.Run(name, func(t *testing.T) {
			const workers = 3
			r := newRig(t, cfg, workers+1, 64, 1, 0, 0)
			dvm.Run(r.eng, forkJoinProgs(workers))
			want := int64(0)
			for w := 1; w <= workers; w++ {
				want += 7 * int64(w)
			}
			if got := r.read(1); got != want {
				t.Fatalf("join sum = %d, want %d", got, want)
			}
		})
	}
}

// TestForkJoinDeterminism: repeated runs produce identical traces.
func TestForkJoinDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		const workers = 3
		r := newRig(t, lazyCfg(), workers+1, 64, 1, 0, 0)
		dvm.Run(r.eng, forkJoinProgs(workers))
		return r.heap.Hash(), r.rec.Signature()
	}
	h1, s1 := run()
	h2, s2 := run()
	if h1 != h2 || s1 != s2 {
		t.Fatalf("fork-join not deterministic: heap %x/%x trace %x/%x", h1, h2, s1, s2)
	}
}

// TestSpawnDuringSpeculationTerminatesRun: a spawn inside a speculation run
// ends the run first (it is inter-thread communication).
func TestSpawnDuringSpeculationTerminatesRun(t *testing.T) {
	r := newRig(t, lazyCfg(), 2, 64, 1, 0, 0)
	main := dvm.NewBuilder("main")
	main.Lock(dvm.Const(0))
	main.Store(dvm.Const(0), dvm.Const(5))
	main.Unlock(dvm.Const(0))
	main.Spawn(dvm.Const(1))
	main.Join(dvm.Const(1))

	child := dvm.NewBuilder("child")
	v := child.Reg()
	child.Load(v, dvm.Const(0))
	child.Store(dvm.Const(1), dvm.FromReg(v))
	cp := child.Build()
	cp.StartSuspended = true

	dvm.Run(r.eng, []*dvm.Program{main.Build(), cp})
	if got := r.read(1); got != 5 {
		t.Fatalf("child read %d, want 5 (spawn must publish the speculative run's committed writes)", got)
	}
	if r.spec.Commits.Load() == 0 {
		t.Fatal("speculation run did not commit before the spawn")
	}
}

// TestJoinAlreadyExited: joining a thread that exited long ago returns
// immediately with its results visible.
func TestJoinAlreadyExited(t *testing.T) {
	r := newRig(t, Config{Mode: ModeStrong}, 2, 64, 1, 0, 0)
	main := dvm.NewBuilder("main")
	i, v := main.Reg(), main.Reg()
	main.Spawn(dvm.Const(1))
	main.ForN(i, 2000, func() { main.Do(func(*dvm.Thread) {}) }) // let the child finish
	main.Join(dvm.Const(1))
	main.Load(v, dvm.Const(4))
	main.Store(dvm.Const(5), dvm.FromReg(v))

	child := dvm.NewBuilder("child")
	child.Store(dvm.Const(4), dvm.Const(99))
	cp := child.Build()
	cp.StartSuspended = true

	dvm.Run(r.eng, []*dvm.Program{main.Build(), cp})
	if got := r.read(5); got != 99 {
		t.Fatalf("main read %d after join, want 99", got)
	}
}
