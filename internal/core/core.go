// Package core implements the deterministic multithreading runtime that is
// this repository's reproduction of the paper's systems:
//
//   - ModeStrong without speculation is Consequence (Merrifield et al.,
//     EuroSys'15): eager strong determinism — every synchronization
//     operation waits for the deterministic turn and commits/updates the
//     thread's isolated memory view.
//   - ModeWeak is TotalOrder-Weak: the same eager DLC total order, but no
//     memory isolation (Kendo-style weak determinism).
//   - ModeWeakNondet is TotalOrder-Weak-Nondet: synchronization still
//     funnels through one global serialization point, but ordered
//     nondeterministically — the paper's simulation of a "perfect logical
//     clock".
//   - ModeStrong with Config.Speculation is LazyDet, the paper's
//     contribution: speculative order elision with lock-level conflict
//     detection, adaptive per-lock speculation statistics, coarsening
//     across critical sections, revert/restart, and irrevocable upgrade
//     for system calls (paper §3). The speculation paths live in spec.go.
//
// The paper derives its comparison systems from the LazyDet code base
// (§5.3); this package mirrors that by hosting all deterministic engines
// behind one Config.
package core

import (
	"time"

	"lazydet/internal/detsync"
	"lazydet/internal/dlc"
	"lazydet/internal/dvm"
	"lazydet/internal/invariant"
	"lazydet/internal/mempipe"
	"lazydet/internal/shmem"
	"lazydet/internal/stats"
	"lazydet/internal/telemetry"
	"lazydet/internal/trace"
	"lazydet/internal/vheap"
)

// Mode selects the determinism regime.
type Mode int

const (
	// ModeStrong isolates threads in versioned memory and determinizes
	// both synchronization order and every load's value (strong
	// determinism). This is Consequence, and the substrate LazyDet
	// speculates on.
	ModeStrong Mode = iota
	// ModeWeak orders synchronization deterministically but shares memory
	// directly: deterministic only for race-free programs (Kendo-style
	// weak determinism).
	ModeWeak
	// ModeWeakNondet totally orders synchronization through a global
	// mutex, nondeterministically. No determinism guarantee; it models
	// the cost of total ordering alone.
	ModeWeakNondet
)

// String returns the evaluation's name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeStrong:
		return "strong"
	case ModeWeak:
		return "weak"
	case ModeWeakNondet:
		return "weak-nondet"
	}
	return "unknown"
}

// SpecConfig tunes the LazyDet speculation engine. The defaults are the
// paper's parameters (§3.4), tuned there on the hash-table microbenchmark
// and reused unchanged for all workloads.
type SpecConfig struct {
	// Coarsening allows one speculation run to span multiple critical
	// sections, up to MaxRunCS. Disabling it (Figure 11's
	// LAZYDET-NoCoarsening) limits runs to one critical section.
	Coarsening bool
	// MaxRunCS bounds the critical sections per run when coarsening.
	MaxRunCS int
	// Irrevocable enables upgrading a run to irrevocable status when a
	// system call is encountered (paper §3.5). When disabled (Figure 11's
	// LAZYDET-NoIrrevocable), a system call inside a speculative critical
	// section reverts the run.
	Irrevocable bool
	// PerLockStats keeps the 64-bit success history per (lock, thread).
	// When disabled (Figure 11's LAZYDET-NoPerLockStats), one history per
	// thread is used for all locks.
	PerLockStats bool
	// ThresholdPermille is the success-rate threshold (out of 1000)
	// required to begin speculating; the paper uses 85 % = 850.
	ThresholdPermille int
	// RetryEvery forces a probe speculation every N suppressed attempts,
	// to notice program phase changes; the paper uses 20.
	RetryEvery int
	// SpeculativeAtomics executes atomic read-modify-writes inside
	// speculation runs, detecting conflicts on the accessed locations —
	// the extension the paper's §7 proposes. When disabled, an atomic
	// terminates the run and executes eagerly.
	SpeculativeAtomics bool
	// WriteAware refines conflict detection in the direction of the
	// dependence-aware schemes the paper's §6.2 points to: a committed
	// critical section invalidates concurrent runs that logged its lock
	// only if it actually wrote under that lock, so read-only critical
	// sections never conflict with each other. Off by default — the
	// paper's G_l scheme treats every acquisition as a conflict source.
	WriteAware bool
}

// DefaultSpecConfig returns the speculation parameters used by every
// experiment. Like the paper (§3.4), the success threshold and retry period
// are 85 % and 20, and the parameter set was tuned once on the hash-table
// microbenchmark and then applied to all workloads: on this runtime a
// coarsening limit of 8 critical sections maximizes hash-table throughput
// (longer runs enlarge the lock set, and with it the conflict probability,
// faster than they amortize commits).
func DefaultSpecConfig() SpecConfig {
	return SpecConfig{
		Coarsening:         true,
		MaxRunCS:           8,
		Irrevocable:        true,
		PerLockStats:       true,
		ThresholdPermille:  850,
		RetryEvery:         20,
		SpeculativeAtomics: true,
	}
}

// Config configures a deterministic engine.
type Config struct {
	// Mode selects the determinism regime.
	Mode Mode
	// Speculation enables LazyDet's lazy determinism. Requires
	// ModeStrong: speculation depends on the isolation that strong
	// determinism provides (paper §2.3).
	Speculation bool
	// Spec tunes speculation; zero value means DefaultSpecConfig.
	Spec SpecConfig
	// Quantum is the DLC increment charged when a deterministic
	// acquisition attempt fails and the thread re-queues for the turn.
	Quantum int64
	// SyncCost is the DLC increment charged for a completed
	// synchronization operation.
	SyncCost int64
	// CheckInvariants enables the runtime audit layer
	// (internal/invariant): at every turn grant and every commit/revert
	// the engine asserts turn-holder uniqueness, heap commit monotonicity
	// and chain integrity, lock-table consistency, and snapshot
	// round-trip exactness. Off by default; when off the only cost is a
	// nil pointer compare at each audit point.
	CheckInvariants bool
	// EagerPublish disables same-owner publication elision: every
	// synchronization operation publishes immediately at its turn, exactly as
	// the pre-elision engines did. The always-publish path is kept as a
	// differential oracle (-eagerpublish on lazydet-run/-bench/-fuzz):
	// schedules, trace signatures, heap hashes and the gated metrics outside
	// the publication machinery must be bit-identical with elision on.
	EagerPublish bool
	// ElideChainLimit bounds how many consecutive publications one thread
	// may defer before the next release publishes eagerly. The retained
	// dirty set (and with it the stage-merge and speculation-snapshot cost)
	// grows with the chain, so an unbounded chain would turn elision's
	// per-release win into quadratic accumulated work on lock-hot loops.
	// Zero means the default (64); the limit only changes which releases
	// elide — a deterministic function of the schedule either way.
	ElideChainLimit int
	// Hints carries per-lock speculation priors indexed by lock ID — the
	// progcheck footprint analysis verdicts, lowered by the harness. Nil,
	// or any lock beyond the slice, means HintNone. Only meaningful with
	// Speculation; the hinted policy must be behavior-equivalent to the
	// unhinted one (identical final memory and Validate outcomes), which
	// lazydet-fuzz checks differentially.
	Hints []SpecHint
}

// WithEagerPublish returns a copy of the config with same-owner publication
// elision disabled — the always-publish differential oracle. Exposed as
// -eagerpublish on lazydet-run/-bench/-fuzz.
func (c Config) WithEagerPublish() Config {
	c.EagerPublish = true
	return c
}

// SpecHint is a static prior for the per-lock speculation policy, computed
// by internal/progcheck's critical-section footprint analysis. The zero
// value means "no static fact" and leaves the adaptive policy (§3.4) in
// sole control.
type SpecHint uint8

const (
	// HintNone: no static verdict; runtime adaptation decides alone.
	HintNone SpecHint = iota
	// HintDisjoint: every pair of critical sections guarded by this lock
	// has a provably non-overlapping data footprint, so speculation on it
	// can never fail validation. The engine always speculates on the lock
	// and skips its conflict checks at commit (DESIGN.md §5e).
	HintDisjoint
	// HintConflicting: two sections provably write-overlap on a constant
	// address, so speculation is wasted work. The engine seeds the lock's
	// success histories at all-failure (conventional until RetryEvery
	// probing earns speculation back) instead of the optimistic
	// all-success default.
	HintConflicting
	// HintCommutative: sections overlap only through commuting operations
	// (atomic adds, identical constant stores) — candidates for future
	// phase reconciliation (ROADMAP's ddtxn item). The runtime currently
	// treats it exactly like HintNone, since the engine has no
	// deterministic merge path yet.
	HintCommutative
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Quantum == 0 {
		c.Quantum = 4
	}
	if c.SyncCost == 0 {
		c.SyncCost = 2
	}
	if c.Spec == (SpecConfig{}) {
		c.Spec = DefaultSpecConfig()
	}
	if c.Spec.MaxRunCS <= 0 || !c.Spec.Coarsening {
		if c.Spec.Coarsening {
			c.Spec.MaxRunCS = DefaultSpecConfig().MaxRunCS
		} else {
			c.Spec.MaxRunCS = 1
		}
	}
	if c.Spec.ThresholdPermille == 0 {
		c.Spec.ThresholdPermille = 850
	}
	if c.Spec.RetryEvery == 0 {
		c.Spec.RetryEvery = 20
	}
	if c.ElideChainLimit == 0 {
		c.ElideChainLimit = 64
	}
	return c
}

// Deps carries the substrates an engine runs on. Heap is required for
// ModeStrong, Mem for the weak modes. Rec, Times and Spec are optional.
type Deps struct {
	Arb   *dlc.Arbiter
	Tbl   *detsync.Table
	Heap  *vheap.Heap
	Mem   *shmem.Mem
	Rec   *trace.Recorder
	Times *stats.Times
	Spec  *stats.Spec
	// Tel, if non-nil, receives the engine's telemetry: turn-wait counters
	// and, when the recorder keeps spans, per-thread DLC-stamped timelines
	// of turn waits, speculation runs, commits and reverts. Disabled (nil)
	// costs one pointer compare per audit point, like OnViolation.
	Tel *telemetry.Recorder
	// OnViolation receives invariant violations when
	// Config.CheckInvariants is set. Nil means panic on violation — a
	// repeatable panic, since the engines are deterministic.
	OnViolation func(*invariant.Violation)
}

// Engine is the deterministic runtime. It implements dvm.Engine.
type Engine struct {
	cfg   Config
	arb   *dlc.Arbiter
	tbl   *detsync.Table
	pipe  mempipe.Pipeline
	rec   *trace.Recorder
	times *stats.Times
	spec  *stats.Spec
	tel   *telemetry.Recorder

	// audit is the invariant checker, nil unless Config.CheckInvariants.
	audit *invariant.Checker

	// irrevocableOwner is the thread ID holding irrevocable status, or
	// -1. Read and written only at deterministic turn points.
	irrevocableOwner int

	// elideGlobal is the workload-wide elision survival history — the same
	// 64-outcome shift register as a lock's ElideHist, fed by every resolved
	// real or virtual elision regardless of lock. It exists because per-lock
	// histories cannot learn on dynamically addressed lock sets (ht's
	// per-bucket locks see a handful of releases each): a workload whose
	// threads release in long uninterrupted runs earns engagement here even
	// when every individual lock is too cold to predict anything. Mutated
	// only at turns.
	elideGlobal uint64
}

// New builds an engine. It panics on inconsistent configuration, which is a
// programming error in the harness.
func New(cfg Config, d Deps) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Speculation && cfg.Mode != ModeStrong {
		panic("core: speculation requires ModeStrong (lazy determinism needs thread isolation)")
	}
	if cfg.Mode == ModeStrong && d.Heap == nil {
		panic("core: ModeStrong requires a versioned heap")
	}
	if cfg.Mode != ModeStrong && d.Mem == nil {
		panic("core: weak modes require direct shared memory")
	}
	if (cfg.Mode == ModeWeakNondet) != d.Arb.Nondet() {
		panic("core: arbiter determinism does not match mode")
	}
	e := &Engine{
		cfg:              cfg,
		arb:              d.Arb,
		tbl:              d.Tbl,
		rec:              d.Rec,
		times:            d.Times,
		spec:             d.Spec,
		tel:              d.Tel,
		irrevocableOwner: -1,
	}
	if cfg.Mode == ModeStrong {
		e.pipe = mempipe.NewVersioned(d.Heap, d.Tel)
	} else {
		e.pipe = mempipe.NewFlat(d.Mem)
	}
	if d.Tel != nil {
		// A pure function of the heap configuration, so a gated metric: a
		// run that silently changed its publication sharding should fail
		// the perf gate's comparison, not pass with different plumbing.
		d.Tel.SetGauge("mempipe.shards", float64(e.pipe.Shards()))
	}
	if cfg.CheckInvariants {
		e.audit = invariant.New(d.Arb, d.Tbl, d.Heap, d.OnViolation)
	}
	if d.Tbl != nil {
		// Conflicting-hinted locks start pessimistic: an all-failure
		// success history keeps them conventional until RetryEvery probing
		// earns speculation back, instead of paying the warm-up reverts
		// the optimistic all-success seed would. (A no-op without per-lock
		// statistics: the SpecHist slices are nil then.) Elision histories
		// need no such zeroing: they start zero for every lock and are
		// earned through virtual probes (elide.go).
		for l, h := range cfg.Hints {
			if h != HintConflicting || l >= len(d.Tbl.Locks) {
				continue
			}
			if cfg.Speculation {
				hist := d.Tbl.Locks[l].SpecHist
				for i := range hist {
					hist[i] = 0
				}
			}
		}
	}
	return e
}

// Name implements dvm.Engine, using the evaluation's system names.
func (e *Engine) Name() string {
	switch {
	case e.cfg.Speculation:
		return "LazyDet"
	case e.cfg.Mode == ModeStrong:
		return "Consequence"
	case e.cfg.Mode == ModeWeak:
		return "TotalOrder-Weak"
	default:
		return "TotalOrder-Weak-Nondet"
	}
}

// Deterministic implements dvm.Engine. Strong modes are deterministic for
// all programs; ModeWeak only for data-race-free programs (all workloads in
// this repository are race-free); ModeWeakNondet is not deterministic.
func (e *Engine) Deterministic() bool { return e.cfg.Mode != ModeWeakNondet }

// strong reports whether the engine isolates threads in versioned memory.
func (e *Engine) strong() bool { return e.cfg.Mode == ModeStrong }

// tstate is the engine's per-thread state, stored in Thread.EngineData.
type tstate struct {
	// mem is the thread's window onto the engine's memory pipeline:
	// versioned (isolated) in strong mode, flat otherwise. The same window
	// backs the VM's Thread.Mem.
	mem mempipe.Thread

	// depth is the current lock nesting, speculative or conventional,
	// exclusive or shared.
	depth        int
	heldConv     []int64 // conventionally held exclusive locks
	heldConvRead []int64 // conventionally held shared locks

	// tickFlushes counts the batched clock flushes this thread sent into
	// the arbiter (see dlc.TickWindow) — published as the deterministic
	// "dlc.tick_flushes" counter at thread exit. Thread-local, so the hot
	// Tick path never touches the telemetry registry's mutex.
	tickFlushes int64

	// Speculation state (paper §3.1–§3.5).
	spec        bool                 // inside a speculation run
	irrevocable bool                 // run upgraded to irrevocable
	begin       int64                // BEGIN_i: DLC when the run started
	baseAtBegin int64                // heap sequence the run's view is based on
	snap        *dvm.Snapshot        // state to restore on revert
	dirtySnap   *vheap.DirtySnapshot // pre-run private writes, preserved across reverts

	// snapScratch and dirtyScratch are the retained buffers snap/dirtySnap
	// are rebuilt into at every BEGIN (per-thread scratch, not a sync.Pool,
	// so recycling cannot perturb deterministic allocation-order counts).
	snapScratch  *dvm.Snapshot
	dirtyScratch *vheap.DirtySnapshot
	logLocks     []int64        // L_i: locks touched, in first-acquisition order
	logCount     map[int64]int  // acquisitions per logged lock
	logWrite     map[int64]bool // logged lock was taken exclusively at least once
	heldSpecRead []int64        // locks currently held speculatively in shared mode
	atomLog      []int64        // atomically accessed locations (§7 extension)
	atomCount    map[int64]int  // accesses per logged location
	wroteUnder   map[int64]bool // locks held during a store (WriteAware mode)
	heldSpec     []int64        // locks currently held speculatively
	runCS        int            // critical sections in the current run
	noSpecNext   bool           // progress guarantee after a revert (§3.2)

	// Per-thread speculation history, used when PerLockStats is off.
	threadHist     uint64
	threadAttempts uint32

	// Publication-elision state (elide.go): when elidePending is set, the
	// thread's most recent publication was deferred at lock elideLock's
	// release and its hit/miss outcome resolves at the thread's next
	// publication point. elideChain counts consecutive deferred
	// publications since the last physical commit, bounded by
	// Config.ElideChainLimit.
	elidePending bool
	elideLock    int64
	elideChain   int

	// Virtual-probe state (elide.go): when virtPending is set, the thread's
	// most recent release at lock virtLock published eagerly and recorded
	// the heap sequence in virtSeq; at the thread's next publication point
	// the probe resolves — an unchanged sequence means a deferred
	// publication would have survived to merge there, a hit at zero staging
	// cost.
	virtPending bool
	virtLock    int64
	virtSeq     int64
}

func (e *Engine) ts(t *dvm.Thread) *tstate { return t.EngineData.(*tstate) }

// ThreadStart implements dvm.Engine. Suspended threads are registered as
// parked, so they do not pin the global clock minimum at zero before they
// are spawned.
func (e *Engine) ThreadStart(t *dvm.Thread) {
	ts := &tstate{threadHist: ^uint64(0)}
	ts.mem = e.pipe.NewThread(t.ID)
	t.Mem = ts.mem
	if e.strong() && e.cfg.Spec.WriteAware {
		t.Mem = writeAwareWindow{ts.mem, ts}
	}
	if e.cfg.Speculation {
		ts.logCount = make(map[int64]int)
		ts.logWrite = make(map[int64]bool)
	}
	t.EngineData = ts
	// The thread's logical-clock reader: arb.DLC is this thread's own
	// clock, so the read is exact at every published flush point and
	// needs no arbitration. Deterministic by the same argument as the
	// tick stream itself.
	tid := t.ID
	t.Clock = func() int64 { return e.arb.DLC(tid) }
	if e.tel != nil {
		// Per-opcode retired-instruction counters: the opcode mix is a
		// function of the deterministic schedule under this engine, so it
		// is published as gateable metrics at thread exit.
		t.EnableRetiredCounts()
	}
	if t.Prog().StartSuspended {
		e.arb.SetParked(t.ID)
	}
}

// ThreadExit implements dvm.Engine: terminate any outstanding speculation
// run (re-running the thread if the run reverts), publish outstanding
// writes, and leave turn arbitration.
func (e *Engine) ThreadExit(t *dvm.Thread) bool {
	ts := e.ts(t)
	if ts.spec {
		if !e.terminateRun(t, ts) {
			return false // reverted: resume interpreting from the snapshot
		}
	}
	if e.arb.Nondet() {
		e.arb.Exit(t.ID)
		return true
	}
	// Take a final turn: the exit commit publishes outstanding writes
	// (strong mode), and Exit in place of releasing the turn makes the
	// Exited status visible exactly at this deterministic boundary, which
	// keeps joiners' retry counts deterministic. Exit is a cross-thread
	// visibility point (joiners adopt this state), so deferred publications
	// settle here.
	e.waitCommitTurn(t)
	e.forcePublish(t, ts)
	if e.tel != nil {
		// The thread's final clock: summed over threads this is the run's
		// total deterministic logical work, the report's "dlc.total".
		e.tel.Count("dlc.total", e.arb.DLC(t.ID))
		// How many batched flushes delivered it (see dlc.TickWindow):
		// dlc.total / dlc.tick_flushes is the realized batching factor.
		e.tel.Count("dlc.tick_flushes", ts.tickFlushes)
		// The retired opcode mix, summed across threads. Re-executions
		// after speculation reverts retire again, exactly as the thread
		// re-ran them; both backends count identically.
		for op, n := range t.RetiredCounts() {
			if n != 0 {
				e.tel.Count("dvm.retired."+dvm.Opcode(op).String(), n)
			}
		}
	}
	e.arb.Exit(t.ID)
	ts.mem.Close()
	return true
}

// Tick implements dvm.Engine. The interpreter batches retired-instruction
// cost (dlc.TickWindow), so this runs once per batch, not per instruction.
func (e *Engine) Tick(t *dvm.Thread, cost int64) {
	if cost == 0 {
		return
	}
	e.ts(t).tickFlushes++
	e.arb.Tick(t.ID, cost)
}

// writeAwareWindow is the memory window installed when write-aware conflict
// detection is on: it intercepts the VM's stores to tag the locks held at
// the store, and passes everything else through to the pipeline window.
// Only the VM's plain stores go through it — speculation-internal stores
// (atomics) use ts.mem directly and are tracked by the atomic log instead.
type writeAwareWindow struct {
	mempipe.Thread
	ts *tstate
}

func (w writeAwareWindow) Store(addr, val int64) {
	w.Thread.Store(addr, val)
	if w.ts.depth > 0 {
		w.ts.markWrite()
	}
}

// markWrite tags every currently held lock as having guarded a write.
func (ts *tstate) markWrite() {
	if ts.wroteUnder == nil {
		ts.wroteUnder = make(map[int64]bool)
	}
	for _, l := range ts.heldSpec {
		ts.wroteUnder[l] = true
	}
	for _, l := range ts.heldConv {
		ts.wroteUnder[l] = true
	}
}

// waitTurn blocks for the deterministic turn, charging blocked time.
//
//lazydet:nondeterministic the wall clock only measures blocked time for stats.Times; the value never influences control flow
func (e *Engine) waitTurn(t *dvm.Thread) {
	if e.times == nil {
		e.arb.WaitTurn(t.ID)
		return
	}
	start := time.Now()
	e.arb.WaitTurn(t.ID)
	e.times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
}

// maxBackoff caps the exponential retry quantum. Retry bumps stay
// deterministic — they depend only on the retry count — while convoys of
// many threads spinning on one contended resource advance their clocks
// quickly instead of re-queuing at every quantum.
const maxBackoff = 512

// waitCommitTurn blocks for a turn at which the thread is allowed to commit:
// while another thread holds irrevocable status, everyone else's commits are
// blocked (paper §3.5), implemented as deterministic quantum bumps.
//
// With telemetry enabled the whole wait is one turn-wait span in DLC time:
// from the clock at which the thread first requested the turn to the clock
// at which a commit-capable turn was granted. Both stamps, and the retry
// count, are deterministic — retries depend only on the deterministic
// irrevocability schedule.
func (e *Engine) waitCommitTurn(t *dvm.Thread) {
	defer phaseBegin("grant")()
	var d0, retries int64
	if e.tel != nil {
		d0 = e.arb.DLC(t.ID)
	}
	backoff := e.cfg.Quantum
	for {
		e.waitTurn(t)
		if e.audit != nil {
			e.audit.AtTurn(t.ID)
		}
		if e.irrevocableOwner == -1 || e.irrevocableOwner == t.ID {
			if e.tel != nil {
				e.tel.Count("turn.waits", 1)
				if retries > 0 {
					e.tel.Count("turn.retries", retries)
				}
				e.tel.Span(t.ID, telemetry.SpanTurnWait, d0, e.arb.DLC(t.ID), retries)
			}
			return
		}
		retries++
		e.arb.ReleaseTurn(t.ID, backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// publish makes the thread's unpublished writes globally visible through the
// memory pipeline, recording the commit in the trace and auditing commit
// integrity. On flat (weak-mode) memory the window is never dirty and this
// is a no-op — which is what lets the synchronization paths drive one
// publication choreography for every engine. Reports whether a physical
// commit happened. Caller holds the turn.
func (e *Engine) publish(t *dvm.Thread, ts *tstate) bool {
	if !ts.mem.Dirty() {
		return false
	}
	defer phaseBegin("commit")()
	if e.audit != nil {
		e.audit.AtPublish(t.ID, ts.mem)
	}
	seq, committed := ts.mem.Publish()
	if !committed {
		return false
	}
	my := e.arb.DLC(t.ID)
	e.rec.Commit(t.ID, my, seq)
	if e.tel != nil {
		e.tel.Span(t.ID, telemetry.SpanCommit, my, my, seq)
	}
	if e.audit != nil {
		e.audit.AtCommit(t.ID, seq)
	}
	return true
}

// publishAndRefresh publishes the thread's writes and re-bases its window on
// the newest published state — the memory half of every eager
// synchronization operation (paper §2: writes become visible "only as a
// result of synchronization operations").
func (e *Engine) publishAndRefresh(t *dvm.Thread, ts *tstate) {
	e.publish(t, ts)
	ts.mem.Refresh()
}

// blockedWake waits for a Wake, charging blocked time.
//
//lazydet:nondeterministic the wall clock only measures blocked time for stats.Times; the value never influences control flow
func (e *Engine) blockedWake(t *dvm.Thread) {
	if e.times == nil {
		e.tbl.WaitWake(t.ID)
		return
	}
	start := time.Now()
	e.tbl.WaitWake(t.ID)
	e.times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
}
