package core

import (
	"fmt"
	"runtime"

	"lazydet/internal/dvm"
	"lazydet/internal/trace"
)

// This file implements the eager, totally ordered synchronization protocol
// shared by Consequence, TotalOrder-Weak and TotalOrder-Weak-Nondet, and
// used by LazyDet for its non-speculative ("conventional") path. Every
// operation waits for the deterministic turn, then publishes and refreshes
// the thread's memory window through the shared pipeline (internal/mempipe)
// — in strong mode that commits the thread's dirty pages and re-bases its
// view, which is what makes writes visible "only as a result of
// synchronization operations" (paper §2); on flat memory both halves are
// no-ops and the pipeline's sequence number is constant 0, so the
// lock-table sequence updates below are inert. One choreography, every
// engine.

// Lock implements dvm.Engine. With speculation enabled it dispatches to the
// lazy path in spec.go; otherwise it acquires conventionally.
func (e *Engine) Lock(t *dvm.Thread, l int64) {
	ts := e.ts(t)
	if e.cfg.Speculation {
		e.lazyLock(t, ts, l)
		return
	}
	e.convLock(t, ts, l)
}

// Unlock implements dvm.Engine.
func (e *Engine) Unlock(t *dvm.Thread, l int64) {
	ts := e.ts(t)
	if ts.spec {
		e.specRelease(t, ts, l)
		return
	}
	e.convUnlock(t, ts, l)
}

// convLock performs a deterministic eager acquisition: wait for the turn,
// publish and refresh memory, and take the lock if it is free and was
// released in the logical past. Otherwise charge a quantum to the clock and
// re-queue — the Kendo retry discipline, deterministic because lock state
// only changes at turns and release times are recorded in logical time.
func (e *Engine) convLock(t *dvm.Thread, ts *tstate, l int64) {
	st := &e.tbl.Locks[l]
	backoff := e.cfg.Quantum
	for {
		e.waitCommitTurn(t)
		// Lazy refresh: a reacquisition is not a cross-thread visibility
		// point, so the thread's own deferred publication (if any) stays
		// outstanding — the same-owner elision win.
		e.publishRefreshLazy(t, ts)
		my := e.arb.DLC(t.ID)
		if st.Owner == 0 && st.Readers == 0 && (e.arb.Nondet() || st.ReleaseDLC <= my) {
			st.Owner = int32(t.ID) + 1
			st.LastAcquireDLC = my
			if !e.cfg.Spec.WriteAware {
				// The acquisition itself invalidates concurrent runs
				// under the paper's G_l discipline; in write-aware
				// mode only the release of a writing critical section
				// does.
				st.LastCommitSeq = e.pipe.Seq()
			}
			st.Acquires++
			ts.depth++
			ts.heldConv = append(ts.heldConv, l)
			if e.spec != nil {
				e.spec.TotalAcquires.Add(1)
			}
			e.rec.Sync(t.ID, trace.OpAcquire, l, my)
			e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
			return
		}
		e.arb.ReleaseTurn(t.ID, backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
		if e.arb.Nondet() {
			// Nondeterministic mode has no logical clock to order the
			// retry behind the holder's release; yield instead of
			// spinning on the global serialization point.
			runtime.Gosched()
		}
	}
}

// convUnlock releases a conventionally held lock at the turn, recording the
// release time for deterministic future acquires. The release publication is
// the elision point: when the lock's policy allows, the commit is deferred
// at a reserved sequence instead of performed (elide.go).
func (e *Engine) convUnlock(t *dvm.Thread, ts *tstate, l int64) {
	e.waitCommitTurn(t)
	e.releasePublish(t, ts, l)
	st := &e.tbl.Locks[l]
	if st.Owner != int32(t.ID)+1 {
		panic(fmt.Sprintf("core: thread %d unlocks lock %d owned by %d", t.ID, l, st.Owner-1))
	}
	st.Owner = 0
	st.ReleaseDLC = e.arb.DLC(t.ID)
	if !e.cfg.Spec.WriteAware || ts.wroteUnder[l] {
		// The critical section's writes became visible with this
		// commit; speculation runs based on older heap states conflict.
		st.LastCommitSeq = e.pipe.Seq()
	}
	delete(ts.wroteUnder, l)
	ts.depth--
	ts.dropHeldConv(l)
	e.rec.Sync(t.ID, trace.OpRelease, l, st.ReleaseDLC)
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
}

// dropHeldConv removes the most recent occurrence of l.
func (ts *tstate) dropHeldConv(l int64) {
	for i := len(ts.heldConv) - 1; i >= 0; i-- {
		if ts.heldConv[i] == l {
			ts.heldConv = append(ts.heldConv[:i], ts.heldConv[i+1:]...)
			return
		}
	}
}

// CondWait implements dvm.Engine: release l, park deterministically on cv,
// and reacquire l after being woken. Condition-variable operations require
// inter-thread communication, so a speculation run terminates first
// (commit if possible, revert otherwise — paper footnote 2).
func (e *Engine) CondWait(t *dvm.Thread, cv, l int64) {
	ts := e.ts(t)
	if ts.spec {
		if !e.terminateRun(t, ts) {
			return // reverted; the run re-executes conventionally
		}
	}
	e.waitCommitTurn(t)
	// Publish without refreshing: the view is re-based by the deterministic
	// re-acquisition after the wake, never at the wall-clock wake moment.
	// Parking is a cross-thread visibility point, so deferred publications
	// settle here — which also keeps any flush pinned to a later wake
	// sequence a deterministic no-op.
	e.forcePublish(t, ts)
	my := e.arb.DLC(t.ID)
	st := &e.tbl.Locks[l]
	st.Owner = 0
	st.ReleaseDLC = my
	if !e.cfg.Spec.WriteAware || ts.wroteUnder[l] {
		st.LastCommitSeq = e.pipe.Seq()
	}
	delete(ts.wroteUnder, l)
	ts.depth--
	ts.dropHeldConv(l)
	c := &e.tbl.Conds[cv]
	c.Waiters = append(c.Waiters, t.ID)
	e.rec.Sync(t.ID, trace.OpCondWait, cv, my)
	e.arb.Park(t.ID)
	e.blockedWake(t)
	// Woken: the signaler set our clock deterministically via Unpark. The
	// view is refreshed by the deterministic re-acquisition below, never
	// at the (wall-clock-dependent) wake moment.
	e.rec.Sync(t.ID, trace.OpCondWake, cv, e.arb.DLC(t.ID))
	e.convLock(t, ts, l)
}

// CondSignal implements dvm.Engine: wake the longest-parked waiter, giving
// it a clock derived from the signaler's — deterministic because both the
// queue order and the signal point are turn-ordered.
func (e *Engine) CondSignal(t *dvm.Thread, cv int64) {
	ts := e.ts(t)
	if ts.spec {
		if !e.terminateRun(t, ts) {
			return
		}
	}
	e.waitCommitTurn(t)
	e.forcePublishRefresh(t, ts)
	my := e.arb.DLC(t.ID)
	c := &e.tbl.Conds[cv]
	if len(c.Waiters) > 0 {
		w := c.Waiters[0]
		c.Waiters = c.Waiters[1:]
		e.arb.Unpark(w, my+1)
		e.tbl.Wake(w)
	}
	e.rec.Sync(t.ID, trace.OpCondSignal, cv, my)
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
}

// CondBroadcast implements dvm.Engine.
func (e *Engine) CondBroadcast(t *dvm.Thread, cv int64) {
	ts := e.ts(t)
	if ts.spec {
		if !e.terminateRun(t, ts) {
			return
		}
	}
	e.waitCommitTurn(t)
	e.forcePublishRefresh(t, ts)
	my := e.arb.DLC(t.ID)
	c := &e.tbl.Conds[cv]
	for k, w := range c.Waiters {
		e.arb.Unpark(w, my+1+int64(k))
		e.tbl.Wake(w)
	}
	c.Waiters = c.Waiters[:0]
	e.rec.Sync(t.ID, trace.OpCondBroadcast, cv, my)
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
}

// BarrierWait implements dvm.Engine: all threads of the run participate.
// The last arriver wakes the others with clocks derived from its own.
func (e *Engine) BarrierWait(t *dvm.Thread, bid int64) {
	ts := e.ts(t)
	if ts.spec {
		if !e.terminateRun(t, ts) {
			return
		}
	}
	e.waitCommitTurn(t)
	// A barrier arrival is a cross-thread visibility point: every released
	// thread re-bases on the arrivals' combined state, so deferred
	// publications settle here — and the woken threads' RefreshTo flushes,
	// bounded by ReleaseSeq, stay deterministic no-ops.
	e.forcePublish(t, ts)
	my := e.arb.DLC(t.ID)
	b := &e.tbl.Barriers[bid]
	e.rec.Sync(t.ID, trace.OpBarrier, bid, my)
	if len(b.Waiting)+1 == e.tbl.NThreads {
		// Record the state every released thread adopts: the commits of
		// all arrivals, published by their turns.
		b.ReleaseSeq = e.pipe.Seq()
		for k, w := range b.Waiting {
			e.arb.Unpark(w, my+1+int64(k))
			e.tbl.Wake(w)
		}
		b.Waiting = b.Waiting[:0]
		ts.mem.Refresh()
		e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
		return
	}
	b.Waiting = append(b.Waiting, t.ID)
	e.arb.Park(t.ID)
	e.blockedWake(t)
	// Re-base on exactly the releasing turn's state, not on whatever has
	// been committed by the wall-clock moment we woke.
	ts.mem.RefreshTo(b.ReleaseSeq)
}

// Syscall implements dvm.Engine. Outside speculation the call runs
// immediately; determinism of its inputs follows from strong isolation, but
// (as in the paper, §7) cross-thread I/O ordering is not determinized.
// During speculation the run is upgraded to irrevocable, or terminated,
// per the configuration (paper §3.5) — see spec.go.
func (e *Engine) Syscall(t *dvm.Thread, s *dvm.Syscall) {
	ts := e.ts(t)
	if ts.spec && !ts.irrevocable {
		if !e.enterIrrevocable(t, ts) {
			return // run reverted; the syscall re-executes after restart
		}
		if !ts.spec {
			// The run terminated (committed) instead of upgrading;
			// fall through to a conventional call.
		}
	}
	e.rec.Sync(t.ID, trace.OpSyscall, int64(s.Work), e.arb.DLC(t.ID))
	dvm.Burn(s.Work)
	if s.Effect != nil {
		s.Effect(t)
	}
	e.arb.Tick(t.ID, int64(s.Work))
}
