// Engine-phase pprof labels: when profiling is on, CPU samples taken inside
// the synchronization machinery are tagged with the phase they fell in —
//
//	engine_phase=grant      arbiter election and turn waiting
//	engine_phase=commit     publication: eager commits, staged (elided)
//	                        publications, and the stage flushes they imply
//	engine_phase=validate   speculation conflict validation
//
// so a -cpuprofile from lazydet-run/-bench/-sim can attribute sync-machinery
// time to the phase the elision work targets (`go tool pprof -tagfocus
// engine_phase=commit`). Labeling costs two goroutine-label stores per
// labeled region, so it is off unless a front end that is actually writing
// a profile calls EnableProfileLabels; disabled, each site is one atomic
// load and a no-op call.
package core

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

var profilePhases atomic.Bool

// EnableProfileLabels turns on engine-phase pprof labels process-wide. The
// CLI front ends call it when -cpuprofile is given; there is no way to turn
// labels off again (profiles are one-shot per process).
func EnableProfileLabels() { profilePhases.Store(true) }

var noPhase = func() {}

// phaseBegin tags the calling goroutine's CPU samples with the named engine
// phase until the returned func runs. Typical use: defer phaseBegin("x")().
func phaseBegin(name string) func() {
	if !profilePhases.Load() {
		return noPhase
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels("engine_phase", name)))
	return clearPhase
}

func clearPhase() { pprof.SetGoroutineLabels(context.Background()) }
