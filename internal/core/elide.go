package core

import (
	"lazydet/internal/detsync"
	"lazydet/internal/dvm"
	"lazydet/internal/telemetry"
)

// This file implements same-owner publication elision: the engine half of
// deferred publication (the heap half is internal/vheap/stage.go).
//
// On a critical-section release the eager protocol commits the thread's
// writes and re-bases its view — two page walks per release, even when the
// same thread immediately reacquires the lock and no other thread ever looks
// at the state in between. Under elision the release only *reserves* the
// commit sequence and stages the dirty words; consecutive same-owner
// sections merge into one accumulated stage, and the physical commit happens
// at the first point where another thread can actually observe the state: a
// foreign thread's own publication point (which flushes outstanding stages),
// or one of this thread's cross-thread visibility points — barrier, condition
// variable, join, spawn, atomic, irrevocable upgrade, thread exit — where the
// engine force-publishes.
//
// The trace is publication-for-publication identical to the eager path: a
// staged release reserves exactly the sequence an eager commit would have
// used and records the same trace Commit event, so schedules, TraceSig and
// HeapHash are bit-identical between elision and -eagerpublish (the
// differential oracle lazydet-fuzz cross-checks). Soundness argument:
// DESIGN.md's elision section.
//
// The elide/force decision is adaptive per lock (ElideHist, shared across
// threads: a miss means the lock's state was demanded cross-thread, which
// predicts misses for every owner), primed by the PR 9 static footprint
// hints: Disjoint locks always elide.
//
// Everything else is earned through VIRTUAL PROBES, which cost nothing. A
// stage survives exactly until any other publication advances the heap
// sequence (every Commit and StagePublish flushes all foreign stages first),
// so whether a deferred publication *would have* survived from one release
// to the owner's next is observable without deferring anything: publish
// eagerly, snapshot the heap sequence, and compare at the next publication
// point. Histories therefore accumulate at full release rate while the
// machinery — stage deep copies, retained frames, re-base rebuilds — stays
// completely off; real staging engages only once the recent history predicts
// survival, and an engaged chain keeps itself alive on its own evidence.
// Workloads whose stages could never survive (dynamically addressed lock
// sets under dense cross-thread commit traffic, speculation phases whose run
// commits flush everything) pay literally zero elision overhead.

// elisionOn reports whether the engine may defer publications at all:
// elision is a versioned-memory optimization (weak engines publish nothing),
// disabled by the -eagerpublish differential oracle.
func (e *Engine) elisionOn() bool { return !e.cfg.EagerPublish && e.strong() }

// shouldElide decides at a release turn whether lock l's publication may be
// deferred: only when the static hint or the recent survival history —
// per-lock, or workload-wide for locks too cold to predict anything —
// says a stage would survive to this thread's next release. There is no
// probing arm: virtual probes (releasePublish) feed the histories for free
// on every eager release, so a false here costs nothing and a true is backed
// by evidence. All state read and written here mutates only at turns, so the
// decision — and with it the gated commit.elided counter — is a
// deterministic function of the schedule.
func (e *Engine) shouldElide(ts *tstate, l int64) bool {
	if !e.elisionOn() {
		return false
	}
	// The retained dirty set — and with it the per-release stage merge and
	// the speculation-snapshot cost — grows with the elision chain, so past
	// the limit the release publishes eagerly and resets the accumulation.
	if ts.elideChain >= e.cfg.ElideChainLimit {
		return false
	}
	// A statically Disjoint lock always elides: no other section guarded by
	// it touches the data this section wrote, so deferring the publication
	// cannot cost a peer anything (DESIGN.md §5e).
	if e.hint(l) == HintDisjoint {
		return true
	}
	if detsync.RecentRatePermille(e.tbl.Locks[l].ElideHist, elideRecentWindow) >= elideEngagePermille {
		return true
	}
	return detsync.RecentRatePermille(e.elideGlobal, elideRecentWindow) >= elideEngagePermille
}

// Resolution points for a pending elided publication (real or virtual). A
// deferral pays exactly when its stage survives to the owner's next release:
// the sections merge there into one physical commit. Surviving only to an
// intermediate refresh point (a lock acquisition between the two sections of
// a would-be chain) proves nothing yet, and surviving to a settling
// publication proves the deferral bought nothing — the stage flushes as its
// own commit, exactly what eager publication would have done.
const (
	elideAtRefresh = iota // ordinary refresh: no outcome unless already flushed
	elideAtSettle         // settling/eager publication: unflushed is still a miss
	elideAtChain          // next release: unflushed means a merge happens here — a hit
)

// elideRecentWindow is how many of the newest survival outcomes the
// engagement decision looks at. Over the full 64-bit history a zero-seeded
// lock would need dozens of consecutive hits before engaging — longer than
// most reacquire phases last. A 16-outcome window engages after 8 hits,
// early enough to capture most of a phase, and disengages within a handful
// of misses once a phase ends.
const elideRecentWindow = 16

// elideEngagePermille is the recent survival rate above which real staging
// engages. Deliberately far below Spec.ThresholdPermille: a speculation miss
// costs a full revert, so speculation demands 850‰, but an elision miss
// wastes only a delta copy plus some retained-frame bookkeeping while a hit
// saves an entire physical commit and refresh — break-even sits well under
// one hit in two. 500‰ also keeps phase-structured workloads engaged:
// a thread whose bursts span k publications scores k-1 hits and one
// boundary miss per burst, a rate of (k-1)/k, which a demanding threshold
// would reject for every k < 8 even though eliding there saves most of the
// commits.
const elideEngagePermille = 500

// resolveElide folds the outcome of the thread's pending elided publication
// into its lock's shared history. A flushed stage is always a miss: the
// state was either demanded cross-thread or committed by the owner's own
// eager publication before any chain formed. An unflushed stage is a hit
// only at a staging release (the merge that saves a physical commit is
// happening right now); at a settling publication it is a miss (no commit
// was saved), and at an ordinary refresh it stays pending — this section's
// release may yet extend the chain. Every publication-point helper below
// resolves before it publishes, settles or stages, so the flushed flag
// still reflects the *prior* flush when read. Caller holds the turn.
func (e *Engine) resolveElide(ts *tstate, at int) {
	if !ts.elidePending {
		return
	}
	flushed := ts.mem.StageFlushed()
	if at == elideAtRefresh && !flushed {
		return
	}
	ts.elidePending = false
	hit := !flushed && at == elideAtChain
	st := &e.tbl.Locks[ts.elideLock]
	st.ElideHist = detsync.PushOutcome(st.ElideHist, hit)
	e.elideGlobal = detsync.PushOutcome(e.elideGlobal, hit)
	if flushed && !ts.mem.Unpublished() {
		// A flush already applied the deferred state and nothing was
		// written since, so the retained dirty set is fully published:
		// drop it now rather than re-staging or re-committing long-silent
		// frames on every later publication.
		ts.mem.DropClean()
		ts.elideChain = 0
	}
}

// resolveVirtual folds the outcome of the thread's pending virtual probe
// (started at an eager release) into the histories: a hit when the heap
// sequence has not moved since — no publication by anyone, so a real stage
// would have survived intact to merge at this release — and a miss when the
// sequence advanced (any foreign commit or staging would have flushed it;
// the thread's own intermediate publication would have settled it) or when
// the probe reaches a settling point, where even a surviving stage buys
// nothing. Refresh points leave the probe pending: the thread's own publish
// there advances the sequence, turning the eventual outcome into a miss by
// itself. Caller holds the turn.
func (e *Engine) resolveVirtual(ts *tstate, at int) {
	if !ts.virtPending {
		return
	}
	if at == elideAtRefresh {
		return
	}
	ts.virtPending = false
	hit := at == elideAtChain && e.pipe.Seq() == ts.virtSeq
	st := &e.tbl.Locks[ts.virtLock]
	st.ElideHist = detsync.PushOutcome(st.ElideHist, hit)
	e.elideGlobal = detsync.PushOutcome(e.elideGlobal, hit)
}

// elidePublish defers the publication at lock l's release: the dirty words
// are staged at a reserved commit sequence and the view is re-based with the
// dirty set retained. The trace records the same Commit event, at the same
// sequence and clock, that the eager path would have recorded. Caller holds
// the turn.
func (e *Engine) elidePublish(t *dvm.Thread, ts *tstate, l int64) {
	defer phaseBegin("commit")()
	if e.audit != nil && ts.mem.Dirty() {
		e.audit.AtPublish(t.ID, ts.mem)
	}
	seq, staged := ts.mem.StagePublish()
	if !staged {
		return
	}
	my := e.arb.DLC(t.ID)
	e.rec.Commit(t.ID, my, seq)
	if e.tel != nil {
		e.tel.Count("commit.elided", 1)
		e.tel.Span(t.ID, telemetry.SpanCommit, my, my, seq)
	}
	if e.audit != nil {
		e.audit.AtCommit(t.ID, seq)
		e.audit.AtDeferred(t.ID, ts.mem)
	}
	ts.elidePending = true
	ts.elideLock = l
	ts.elideChain++
}

// releasePublish is the publication at a critical-section release: elided
// when the policy allows, eager otherwise. The thread's pending outcomes —
// real stage or virtual probe — resolve first, at their hit point, so the
// histories the decision reads are current through this very release. An
// unflushed pending stage extends its chain directly (the merge happening
// right now is the payoff the histories only predict); an eager release
// starts a cost-free virtual probe in its place. Either way the view ends
// re-based on the state the release must observe. Caller holds the turn.
func (e *Engine) releasePublish(t *dvm.Thread, ts *tstate, l int64) {
	chained := ts.elidePending && !ts.mem.StageFlushed() &&
		ts.elideChain < e.cfg.ElideChainLimit
	e.resolveElide(ts, elideAtChain)
	e.resolveVirtual(ts, elideAtChain)
	if chained || e.shouldElide(ts, l) {
		e.elidePublish(t, ts, l)
		return
	}
	e.publishRefreshLazy(t, ts)
	if e.elisionOn() {
		ts.virtPending = true
		ts.virtLock = l
		ts.virtSeq = e.pipe.Seq()
	}
}

// publishRefreshLazy publishes unpublished writes eagerly and re-bases the
// window while keeping any deferred state outstanding — the elision-aware
// analogue of publishAndRefresh for synchronization points that need fresh
// state but are not cross-thread visibility points (lock acquisitions, the
// read half of an eager atomic). Under -eagerpublish (and on flat memory) it
// is publishAndRefresh exactly. Caller holds the turn.
func (e *Engine) publishRefreshLazy(t *dvm.Thread, ts *tstate) {
	if !e.elisionOn() {
		e.publishAndRefresh(t, ts)
		return
	}
	e.resolveElide(ts, elideAtRefresh)
	if e.publish(t, ts) {
		ts.elideChain = 0
	}
	ts.mem.RefreshDirty()
}

// forcePublish makes every deferred publication real at a cross-thread
// visibility point: resolve the pending elision outcome, commit unpublished
// writes eagerly (which first applies the thread's own stage at its reserved
// sequence, then commits the delta), settle every remaining outstanding
// stage, and release the now fully published dirty set. The window's base is
// not moved; callers that need fresh state refresh afterwards, and callers
// that park (condition variables, barriers) are re-based by their
// deterministic wake path — the same contract the eager protocol imposes.
// Caller holds the turn.
func (e *Engine) forcePublish(t *dvm.Thread, ts *tstate) {
	if !e.elisionOn() {
		e.publish(t, ts)
		return
	}
	e.resolveElide(ts, elideAtSettle)
	e.resolveVirtual(ts, elideAtSettle)
	e.publish(t, ts)
	ts.mem.SettleDeferred()
	ts.mem.DropClean()
	ts.elideChain = 0
}

// forcePublishRefresh is forcePublish plus a re-base on the newest published
// state — the cross-thread-visibility analogue of publishAndRefresh
// (condvar signals, spawns, joins, eager atomics). Caller holds the turn.
func (e *Engine) forcePublishRefresh(t *dvm.Thread, ts *tstate) {
	e.forcePublish(t, ts)
	ts.mem.Refresh()
}
