package core

import (
	"time"

	"lazydet/internal/detsync"
	"lazydet/internal/dvm"
	"lazydet/internal/telemetry"
	"lazydet/internal/trace"
)

// This file implements lazy determinism (paper §3): speculative order
// elision, lock-level conflict detection, commit and revert, adaptive
// speculation, and irrevocable upgrade.

// lazyLock is the LazyDet lock-acquisition path. Every acquisition at
// critical-section depth 0 is a decision point: begin a run, continue the
// current run, terminate it, or fall back to a conventional acquisition
// (Figure 3 in the paper).
func (e *Engine) lazyLock(t *dvm.Thread, ts *tstate, l int64) {
	if ts.spec {
		if ts.depth > 0 {
			// Nested acquisition inside a speculative critical
			// section: nesting is flattened into the run (§6.2).
			e.specAcquire(t, ts, l, true)
			return
		}
		want := e.shouldSpeculate(ts, t.ID, l)
		if want && ts.runCS < e.cfg.Spec.MaxRunCS {
			e.specAcquire(t, ts, l, true)
			return
		}
		if !e.terminateRun(t, ts) {
			return // reverted: execution restarts from the snapshot
		}
		if want && !ts.noSpecNext {
			// The run only ended because it hit the coarsening
			// limit; chain a fresh run starting at this lock.
			e.beginRun(t, ts)
			e.specAcquire(t, ts, l, true)
			return
		}
		e.convLock(t, ts, l)
		return
	}
	if ts.depth == 0 && !ts.noSpecNext && e.shouldSpeculate(ts, t.ID, l) {
		e.beginRun(t, ts)
		e.specAcquire(t, ts, l, true)
		return
	}
	// Progress guarantee: after a revert the next critical section runs
	// without speculation (§3.2).
	ts.noSpecNext = false
	e.convLock(t, ts, l)
}

// beginRun starts a speculation run at the current lock acquisition:
// snapshot thread state for roll-back and record BEGIN_i and the heap
// sequence the run's reads are based on (§3.1). Both snapshots are rebuilt
// into per-thread scratch buffers, so steady-state BEGINs allocate nothing.
func (e *Engine) beginRun(t *dvm.Thread, ts *tstate) {
	ts.snapScratch = t.SnapshotInto(ts.snapScratch)
	ts.snap = ts.snapScratch
	ts.dirtyScratch = ts.mem.SnapshotDirtyInto(ts.dirtyScratch)
	ts.dirtySnap = ts.dirtyScratch
	ts.begin = e.arb.DLC(t.ID)
	ts.baseAtBegin = ts.mem.BaseSeq()
	ts.spec = true
	ts.runCS = 0
}

// specAcquire records a speculative acquisition in the thread-local log
// L_i. No coordination with other threads happens (§3.1). Shared-mode
// acquisitions (write = false) are logged as reads, which never conflict
// with other readers.
func (e *Engine) specAcquire(t *dvm.Thread, ts *tstate, l int64, write bool) {
	if ts.logCount[l] == 0 {
		ts.logLocks = append(ts.logLocks, l)
	}
	ts.logCount[l]++
	op := trace.OpRAcquire
	if write {
		ts.logWrite[l] = true
		ts.heldSpec = append(ts.heldSpec, l)
		op = trace.OpAcquire
	} else {
		ts.heldSpecRead = append(ts.heldSpecRead, l)
	}
	ts.depth++
	if ts.depth == 1 {
		ts.runCS++
	}
	if e.spec != nil {
		e.spec.TotalAcquires.Add(1)
		e.spec.SpecAcquires.Add(1)
	}
	e.rec.Sync(t.ID, op, l, e.arb.DLC(t.ID))
}

// specRelease records a speculative exclusive release. An irrevocable run
// terminates at the first point where no locks are held (§3.5).
func (e *Engine) specRelease(t *dvm.Thread, ts *tstate, l int64) {
	dropLast(&ts.heldSpec, l)
	ts.depth--
	e.rec.Sync(t.ID, trace.OpRelease, l, e.arb.DLC(t.ID))
	if ts.irrevocable && ts.depth == 0 {
		e.terminateRun(t, ts) // commits: irrevocable runs never revert
	}
}

// shouldSpeculate makes the adaptive speculation decision (§3.4) from the
// 64-bit success history: speculate when the success rate is at or above
// the threshold; below it, probe every RetryEvery suppressed attempts to
// notice program phase changes. All state read here is thread-private, so
// the decision is deterministic.
func (e *Engine) shouldSpeculate(ts *tstate, tid int, l int64) bool {
	// A statically Disjoint lock always speculates: its critical sections
	// have provably non-overlapping footprints, so speculation on it can
	// never fail validation (DESIGN.md §5e) and warm-up or probing would
	// only forfeit elision wins. The noSpecNext progress guarantee is
	// enforced by the callers before they consult this decision, so the
	// prior cannot starve a reverted thread.
	if e.hint(l) == HintDisjoint {
		return true
	}
	var hist uint64
	var attempts *uint32
	if e.cfg.Spec.PerLockStats {
		st := &e.tbl.Locks[l]
		hist = st.SpecHist[tid]
		attempts = &st.SpecAttempts[tid]
	} else {
		hist = ts.threadHist
		attempts = &ts.threadAttempts
	}
	if detsync.SuccessRatePermille(hist) >= e.cfg.Spec.ThresholdPermille {
		return true
	}
	*attempts++
	return int(*attempts)%e.cfg.Spec.RetryEvery == 0
}

// recordOutcome shifts the run's outcome into the history of every lock it
// touched (or the thread history when per-lock statistics are disabled).
func (e *Engine) recordOutcome(ts *tstate, tid int, success bool) {
	if !e.cfg.Spec.PerLockStats {
		ts.threadHist = detsync.PushOutcome(ts.threadHist, success)
		return
	}
	for _, l := range ts.logLocks {
		h := &e.tbl.Locks[l].SpecHist[tid]
		*h = detsync.PushOutcome(*h, success)
	}
}

// validate is conflict detection (§3.2): the run fails if any lock it
// recorded was acquired by another thread since the run began, or is
// currently held non-speculatively. Detection is purely on locks — never on
// data addresses — since lock-level detection plus versioned memory
// suffices for determinism and memory consistency.
//
// "Acquired since the run began" is decided with two deterministic tests:
// the paper's G_l comparison against BEGIN_i, and a commit-sequence
// comparison against the run's heap base, which is what guarantees the
// run's reads included every committed critical section of each logged
// lock in this runtime.
func (e *Engine) validate(ts *tstate) bool {
	if !e.validateAtomics(ts) {
		return false
	}
	for _, l := range ts.logLocks {
		if e.hint(l) == HintDisjoint {
			// Statically disjoint footprints: no section guarded by l
			// reads or writes data another section of l touches, so
			// commits interleaved since BEGIN cannot have invalidated
			// this run through l. The lock-level checks below are coarser
			// than footprints and would still fire spuriously; skipping
			// them is what turns the static verdict into elided reverts.
			// Soundness argument: DESIGN.md §5e.
			continue
		}
		st := &e.tbl.Locks[l]
		if st.Owner != 0 {
			st.ConflictReverts++
			return false // exclusively held by another thread
		}
		if ts.logWrite[l] && st.Readers != 0 {
			st.ConflictReverts++
			return false // our write conflicts with live readers
		}
		if !e.cfg.Spec.WriteAware && st.LastAcquireDLC > ts.begin {
			st.ConflictReverts++
			return false
		}
		if st.LastCommitSeq > ts.baseAtBegin {
			st.ConflictReverts++
			return false
		}
	}
	return true
}

// hint returns the static speculation prior for lock l; HintNone when no
// hint table was configured or l is out of its range.
func (e *Engine) hint(l int64) SpecHint {
	if l >= 0 && l < int64(len(e.cfg.Hints)) {
		return e.cfg.Hints[l]
	}
	return HintNone
}

// terminateRun ends the current speculation run: wait for the commit turn,
// validate (unless irrevocable — its conflicts were checked at upgrade and
// no other thread has committed since), then either commit the run or
// revert the thread. Returns true if the run committed.
func (e *Engine) terminateRun(t *dvm.Thread, ts *tstate) bool {
	if e.spec != nil {
		e.spec.Runs.Add(1)
	}
	e.waitCommitTurn(t)
	endValidate := phaseBegin("validate")
	valid := ts.irrevocable || e.validate(ts)
	endValidate()
	if valid {
		e.commitRunLocked(t, ts)
		e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
		return true
	}
	e.revertLocked(t, ts)
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
	return false
}

// commitRunLocked publishes a validated run: commit dirty pages, update the
// G_l map and commit sequences for every logged lock, convert any still-held
// speculative locks into conventionally held ones (runs terminating at a
// condition-variable operation hold their critical-section lock), and
// record success in the adaptive histories. Caller holds the turn.
func (e *Engine) commitRunLocked(t *dvm.Thread, ts *tstate) {
	// A validated run's publication is a release like any other and elides
	// under the same per-lock policy, attributed to the run's first logged
	// lock (the lock that began the run). An irrevocable run publishes
	// eagerly: its deferred state was already settled at the upgrade.
	if !ts.irrevocable && len(ts.logLocks) > 0 {
		e.releasePublish(t, ts, ts.logLocks[0])
	} else {
		e.publishRefreshLazy(t, ts)
	}
	my := e.arb.DLC(t.ID)
	seq := e.pipe.Seq()
	for _, l := range ts.logLocks {
		st := &e.tbl.Locks[l]
		if ts.logWrite[l] {
			st.LastAcquireDLC = my
			if !e.cfg.Spec.WriteAware {
				st.LastCommitSeq = seq
			} else if ts.wroteUnder[l] {
				st.LastCommitSeq = seq
				// heldSpec is a handful of nested locks at most; a linear
				// scan beats allocating a membership map per commit.
				if !containsLock(ts.heldSpec, l) {
					delete(ts.wroteUnder, l)
				}
			}
		}
		st.Acquires += int64(ts.logCount[l])
	}
	e.commitAtomicsLocked(ts)
	for _, l := range ts.heldSpec {
		e.tbl.Locks[l].Owner = int32(t.ID) + 1
		ts.heldConv = append(ts.heldConv, l)
	}
	for _, l := range ts.heldSpecRead {
		e.tbl.Locks[l].Readers++
		ts.heldConvRead = append(ts.heldConvRead, l)
	}
	e.recordOutcome(ts, t.ID, true)
	if e.spec != nil {
		e.spec.Commits.Add(1)
		e.spec.CommittedCS.Add(int64(ts.runCS))
	}
	if e.tel != nil {
		e.tel.Span(t.ID, telemetry.SpanSpec, ts.begin, my, int64(ts.runCS))
	}
	if ts.irrevocable {
		e.irrevocableOwner = -1
	}
	e.rec.Sync(t.ID, trace.OpSpecCommit, int64(ts.runCS), my)
	e.resetSpec(ts)
}

// revertLocked reverts a failed run: restore the thread snapshot and
// discard the run's private pages, reinstating the pre-run dirty set (the
// thread's writes from before the run must survive its failure). The DLC is
// deliberately left unchanged (§3.3). Caller holds the turn.
//
//lazydet:nondeterministic the wall clock only measures the revert's cost for stats.Spec; the value never influences control flow
func (e *Engine) revertLocked(t *dvm.Thread, ts *tstate) {
	start := time.Now()
	discarded := ts.mem.RevertTo(ts.dirtySnap)
	t.Restore(ts.snap)
	cost := time.Since(start).Nanoseconds()
	if e.audit != nil {
		// The thread must be exactly its BEGIN snapshot again, and the
		// dirty set exactly the pre-run dirty set.
		e.audit.AtRevert(t, ts.snap, ts.mem.DirtyWords(), ts.dirtySnap.Words())
		// The pre-run dirty set includes any deferred (staged, un-published)
		// state; the restore must have preserved it word for word.
		e.audit.AtDeferred(t.ID, ts.mem)
	}
	e.recordOutcome(ts, t.ID, false)
	if e.spec != nil {
		e.spec.Reverts.Add(1)
		e.spec.AddRevertSample(cost, discarded)
	}
	if e.tel != nil {
		my := e.arb.DLC(t.ID)
		e.tel.Count("spec.reverted_words", int64(discarded))
		e.tel.Observe("spec.revert_words", int64(discarded))
		e.tel.Span(t.ID, telemetry.SpanSpec, ts.begin, my, int64(ts.runCS))
		e.tel.Span(t.ID, telemetry.SpanRevert, my, my, int64(discarded))
	}
	e.rec.Sync(t.ID, trace.OpSpecRevert, int64(ts.runCS), e.arb.DLC(t.ID))
	ts.noSpecNext = true
	clear(ts.wroteUnder) // discarded writes never became visible
	e.resetSpec(ts)
	ts.depth = len(ts.heldConv) + len(ts.heldConvRead) // always 0: runs begin outside critical sections
}

// containsLock reports whether lock l appears in held, a nesting-depth-sized
// slice of currently held speculative locks.
func containsLock(held []int64, l int64) bool {
	for _, h := range held {
		if h == l {
			return true
		}
	}
	return false
}

// resetSpec clears per-run state.
func (e *Engine) resetSpec(ts *tstate) {
	ts.spec = false
	ts.irrevocable = false
	ts.snap = nil
	ts.dirtySnap = nil
	ts.logLocks = ts.logLocks[:0]
	clear(ts.logCount)
	clear(ts.logWrite)
	ts.atomLog = ts.atomLog[:0]
	clear(ts.atomCount)
	ts.heldSpec = ts.heldSpec[:0]
	ts.heldSpecRead = ts.heldSpecRead[:0]
	ts.runCS = 0
}

// enterIrrevocable handles a system call during speculation (§3.5).
// Outside a critical section the run simply terminates. Inside one, the run
// is upgraded to irrevocable: conflict detection happens now, and on
// success the thread blocks all other commits until the run terminates, so
// no conflict can arise for the now-irrevocable run. With the upgrade
// disabled (Figure 11's ablation) the run reverts instead and the syscall
// re-executes non-speculatively. Returns false if the thread was reverted.
func (e *Engine) enterIrrevocable(t *dvm.Thread, ts *tstate) bool {
	if ts.depth == 0 {
		return e.terminateRun(t, ts)
	}
	if !e.cfg.Spec.Irrevocable {
		if e.spec != nil {
			e.spec.Runs.Add(1)
		}
		e.waitCommitTurn(t)
		e.revertLocked(t, ts)
		e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
		return false
	}
	e.waitCommitTurn(t)
	if e.validate(ts) {
		ts.irrevocable = true
		e.irrevocableOwner = t.ID
		// Settle deferred publications at the upgrade turn: the irrevocable
		// phase reads committed state off-turn (ReadCommitted), and settling
		// now keeps those reads' flushes deterministic no-ops. The pending
		// elision resolves first, so the settle of the thread's own stage is
		// not mistaken for a cross-thread miss.
		e.resolveElide(ts, elideAtSettle)
		e.resolveVirtual(ts, elideAtSettle)
		ts.mem.SettleDeferred()
		if e.spec != nil {
			e.spec.Upgrades.Add(1)
		}
		e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
		return true
	}
	if e.spec != nil {
		e.spec.Runs.Add(1)
	}
	e.revertLocked(t, ts)
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
	return false
}
