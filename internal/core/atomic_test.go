package core

import (
	"testing"

	"lazydet/internal/dvm"
)

// atomicCounterProg builds a program atomically incrementing word 0 n times.
func atomicCounterProg(n int64) *dvm.Program {
	b := dvm.NewBuilder("atomic-counter")
	i, r := b.Reg(), b.Reg()
	b.ForN(i, n, func() {
		b.AtomicAdd(r, dvm.Const(0), dvm.Const(1))
	})
	return b.Build()
}

// TestAtomicAddAllModes: atomic increments must never be lost under any
// deterministic mode.
func TestAtomicAddAllModes(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: ModeStrong},
		{Mode: ModeStrong, Speculation: true},
		{Mode: ModeWeak},
		{Mode: ModeWeakNondet},
	} {
		name := cfg.Mode.String()
		if cfg.Speculation {
			name = "lazydet"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, cfg, 4, 16, 1, 0, 0)
			p := atomicCounterProg(200)
			dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
			if got := r.read(0); got != 800 {
				t.Fatalf("counter = %d, want 800", got)
			}
		})
	}
}

// TestAtomicCASSemantics: CAS succeeds exactly once per value under
// contention, so a CAS-based claim loop allocates distinct slots.
func TestAtomicCASSemantics(t *testing.T) {
	r := newRig(t, lazyCfg(), 4, 64, 1, 0, 0)
	// Each thread claims 8 slots by CAS-ing 0 → tid+1 over the slot
	// array; on failure it moves on. Every slot ends up claimed once.
	b := dvm.NewBuilder("cas")
	s, ok := b.Reg(), b.Reg()
	b.ForN(s, 32, func() {
		b.AtomicCAS(ok, dvm.Dyn(func(t *dvm.Thread) int64 { return 8 + t.R(s) }), dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) + 1 }))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	for slot := int64(8); slot < 40; slot++ {
		v := r.read(slot)
		if v < 1 || v > 4 {
			t.Fatalf("slot %d = %d, want a claimant in 1..4", slot, v)
		}
	}
}

// TestAtomicExchange: the exchanged-out values across all threads plus the
// final value must form the complete multiset of written values.
func TestAtomicExchange(t *testing.T) {
	r := newRig(t, Config{Mode: ModeStrong}, 2, 16, 1, 0, 0)
	b := dvm.NewBuilder("xchg")
	i, prev, acc := b.Reg(), b.Reg(), b.Reg()
	b.ForN(i, 50, func() {
		b.AtomicExchange(prev, dvm.Const(0), dvm.Const(1))
		b.Do(func(t *dvm.Thread) { t.AddR(acc, t.R(prev)) })
	})
	b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return 1 + int64(t.ID) }), dvm.FromReg(acc))
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p})
	// 100 exchanges write 1; the sum of previous values plus the final
	// cell equals the number of 1-writes observed (first exchange reads
	// the initial 0).
	total := r.read(1) + r.read(2) + r.read(0)
	if total != 100 {
		t.Fatalf("exchange accounting = %d, want 100", total)
	}
}

// TestSpeculativeAtomicsStayInRun: with the extension enabled, atomics on
// disjoint locations do not terminate speculation runs.
func TestSpeculativeAtomicsStayInRun(t *testing.T) {
	r := newRig(t, lazyCfg(), 1, 64, 4, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 8, func() {
		l := dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) % 4 })
		b.Lock(l)
		b.AtomicAdd(v, dvm.Dyn(func(t *dvm.Thread) int64 { return 16 + t.R(i)%4 }), dvm.Const(1))
		b.Unlock(l)
	})
	dvm.Run(r.eng, []*dvm.Program{b.Build()})
	if runs := r.spec.Runs.Load(); runs != 1 {
		t.Errorf("runs = %d, want 1 (atomics must not end runs)", runs)
	}
	for a := int64(16); a < 20; a++ {
		if got := r.read(a); got != 2 {
			t.Errorf("word %d = %d, want 2", a, got)
		}
	}
}

// TestNonSpeculativeAtomicsTerminateRuns: with the extension disabled, an
// atomic inside a speculative critical section upgrades the run (like a
// system call), and outside one it terminates the run.
func TestNonSpeculativeAtomicsTerminateRuns(t *testing.T) {
	cfg := lazyCfg()
	cfg.Spec = DefaultSpecConfig()
	cfg.Spec.SpeculativeAtomics = false
	r := newRig(t, cfg, 1, 64, 4, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 8, func() {
		l := dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) % 4 })
		b.Lock(l)
		b.AtomicAdd(v, dvm.Const(16), dvm.Const(1))
		b.Unlock(l)
	})
	dvm.Run(r.eng, []*dvm.Program{b.Build()})
	if got := r.read(16); got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
	if runs := r.spec.Runs.Load(); runs < 4 {
		t.Errorf("runs = %d, want many (each atomic ends or upgrades a run)", runs)
	}
}

// TestAtomicConflictReverts: two threads' speculative runs updating the
// same atomic location must conflict — location-level detection — and the
// final count must still be exact.
func TestAtomicConflictReverts(t *testing.T) {
	r := newRig(t, lazyCfg(), 4, 64, 4, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 100, func() {
		l := dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) })
		b.Lock(l) // disjoint locks: only the atomic location is shared
		b.AtomicAdd(v, dvm.Const(32), dvm.Const(1))
		b.Unlock(l)
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(32); got != 400 {
		t.Fatalf("counter = %d, want 400 (atomic updates lost)", got)
	}
	if r.spec.Reverts.Load() == 0 {
		t.Error("no reverts despite a shared atomic location across speculative runs")
	}
}

// TestAtomicDeterminism: repeated lazy runs of a contended atomic workload
// must produce identical traces and heaps.
func TestAtomicDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		r := newRig(t, lazyCfg(), 4, 64, 4, 0, 0)
		b := dvm.NewBuilder("p")
		i, v := b.Reg(), b.Reg()
		b.ForN(i, 150, func() {
			l := dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) })
			b.Lock(l)
			b.AtomicAdd(v, dvm.Dyn(func(t *dvm.Thread) int64 { return 32 + t.R(i)%2 }), dvm.Const(1))
			b.Unlock(l)
		})
		p := b.Build()
		dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
		return r.heap.Hash(), r.rec.Signature()
	}
	h1, s1 := run()
	h2, s2 := run()
	if h1 != h2 || s1 != s2 {
		t.Fatalf("atomic workload not deterministic: heap %x/%x trace %x/%x", h1, h2, s1, s2)
	}
}
