package core

import (
	"lazydet/internal/dlc"
	"lazydet/internal/dvm"
	"lazydet/internal/trace"
)

// This file implements deterministic thread creation and joining — the
// pthread_create / pthread_join surface every PARSEC/SPLASH-2 program uses
// around its parallel phase.
//
//   - A suspended thread is registered as parked, so it does not hold the
//     global clock minimum at zero.
//   - Spawn happens at the spawner's turn: the spawner publishes its memory
//     (create has release semantics), the child's clock is derived from the
//     spawner's, and the child is released. All deterministic.
//   - Join retries at the joiner's turns until the target has exited.
//     Exits become visible exactly at the exiting thread's final commit
//     turn (the arbiter transitions Turn→Exited in place), so the retry
//     count — and with it the joiner's clock — is deterministic. The join
//     then refreshes the joiner's view (join has acquire semantics).

// ThreadResume refreshes a freshly spawned thread's memory view to exactly
// the state its spawner published: the acquire half of pthread_create's
// happens-before edge, pinned to the spawn turn's sequence so the resume is
// deterministic.
func (e *Engine) ThreadResume(t *dvm.Thread) {
	e.ts(t).mem.RefreshTo(e.tbl.SpawnSeq[t.ID])
}

// Spawn implements dvm.Engine.
func (e *Engine) Spawn(t *dvm.Thread, target int) {
	ts := e.ts(t)
	if ts.spec {
		// Creating a thread is inter-thread communication: terminate
		// the run (commit if possible, revert otherwise).
		if !e.terminateRun(t, ts) {
			return // reverted; the spawn re-executes after restart
		}
	}
	e.waitCommitTurn(t)
	// Release semantics: the child re-bases on exactly this state, so
	// deferred publications settle here (the child's pinned RefreshTo flush
	// is then a deterministic no-op).
	e.forcePublishRefresh(t, ts)
	e.tbl.SpawnSeq[target] = e.pipe.Seq()
	my := e.arb.DLC(t.ID)
	e.arb.Unpark(target, my+1)
	t.Group().StartThread(target)
	e.rec.Sync(t.ID, trace.OpSpawn, int64(target), my)
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
}

// Join implements dvm.Engine.
func (e *Engine) Join(t *dvm.Thread, target int) {
	ts := e.ts(t)
	if ts.spec {
		if !e.terminateRun(t, ts) {
			return
		}
	}
	backoff := e.cfg.Quantum
	for {
		e.waitCommitTurn(t)
		if e.arb.Status(target) == dlc.StatusExited {
			// Acquire semantics: the target's final commit is already
			// published; refresh our window to include it. Join is a
			// cross-thread visibility point, so our own deferred
			// publications settle too.
			e.forcePublishRefresh(t, ts)
			e.rec.Sync(t.ID, trace.OpJoin, int64(target), e.arb.DLC(t.ID))
			e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
			return
		}
		e.arb.ReleaseTurn(t.ID, backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}
